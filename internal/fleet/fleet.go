// Package fleet is the concurrent multi-node runtime: a deterministic,
// worker-pool-driven engine that runs N core.Ecosystem nodes in
// parallel. Each node's entire lifecycle is one fused worker task —
// pre-deployment characterization (stress campaigns, fault-injection,
// predictor training, or an archetype-snapshot restore), mode entry,
// cloud export, then the full window sequence, buffering a compact
// health record per window — after which the node's ecosystem is
// dropped and only its summary, health records and exported cloud node
// survive. A replay goroutine feeds the recorded health into the
// openstack.Manager scheduler in window order (reliability metric,
// proactive migration, SLA accounting), pipelined against compute:
// window w replays the moment every node has buffered it, while later
// windows are still stepping. Batching is legal because node
// simulations never read cloud-layer state: the replay feeds the
// manager byte-identical inputs, in the identical order, as a
// per-window barrier would, at a fraction of the synchronization cost
// — and pipelining is legal for the same reason, since consuming a
// completed window can never perturb the windows still computing.
//
// The fused lifecycle is what bounds memory: at most `workers` full
// ecosystems are alive at any instant, independent of fleet size, so
// peak heap scales as workers × ecosystem-size plus O(nodes) compact
// state (health records, summaries, exported cloud nodes) — which is
// what makes O(100k)-node populations runnable. Config.Shards
// partitions the node range into contiguous batches dispatched in
// order, bounding the coordinator's unfolded-summary backlog to two
// shards (the shard being folded and the one computing behind it);
// Config.OnNode streams per-node summaries out instead of retaining
// them; Config.Archetypes collapses characterization cost from
// O(nodes) to O(distinct silicon/DRAM bins) by cloning one
// characterized snapshot per bin with per-node stream reseating.
//
// Determinism is a hard requirement and a structural property, not a
// best effort: every node owns its rng.Source (seeded by the pure
// NodeSeed function), its telemetry.Clock and its entire simulator
// stack, so no worker-scheduling order can perturb a node's stream;
// workers write only to their own node's slot; and everything that
// crosses nodes — health reports into the manager, VM arrivals, the
// final summary — is merged in node order on the coordinator
// goroutine. Shards fold strictly in shard order and nodes within a
// shard in node order, so the global merge order is exactly the
// unsharded engine's node order. The same seed therefore produces
// byte-identical fleet fingerprints at any worker count AND any shard
// count, while wall-clock drops with cores.
package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uniserver/internal/core"
	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/openstack"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// Config shapes a fleet run.
type Config struct {
	// Nodes is the fleet size.
	Nodes int
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS. Worker
	// count never changes results, only wall-clock — and it is the
	// memory dial: at most Workers ecosystems are alive at once.
	Workers int
	// Seed drives the whole fleet; per-node seeds derive from it via
	// NodeSeed.
	Seed uint64
	// Mode and RiskTarget select each node's operating point.
	Mode       vfr.Mode
	RiskTarget float64
	// Windows is the number of barrier epochs (one simulated minute
	// each, matching core's runtime window).
	Windows int
	// Workload is the per-node guest profile.
	Workload workload.Profile
	// Mem configures each node's DRAM system.
	Mem dram.Config
	// MemBytesPerNode is the schedulable memory exported per node.
	MemBytesPerNode uint64
	// Policy is the cloud scheduling policy.
	Policy openstack.Policy
	// VMs is the number of VM arrivals streamed at the fleet; <= 0
	// picks 3 per node.
	VMs int
	// Repair is how long a crashed node stays offline.
	Repair time.Duration
	// HealthLogOut, when set, receives every node's JSON-lines health
	// log, concatenated in node order (deterministic at any worker
	// count).
	HealthLogOut io.Writer

	// Node, when set, supplies node i's full spec — silicon bin,
	// memory, operating point, guest profile, ambient — overriding the
	// homogeneous fields above. It MUST be a pure function of i: it is
	// called from worker goroutines in scheduling order, and any
	// hidden state would break the determinism contract. Start from
	// BaseSpec and mutate.
	Node func(i int) NodeSpec
	// Perturb, when set, returns the scenario intervention to apply to
	// node i immediately before it steps window w — ambient changes,
	// workload swaps (tenant churn, droop-virus injection), mid-run
	// mode switches. Same purity rule as Node: it must depend only on
	// (i, w).
	Perturb func(i, w int) Perturbation
	// Arrivals, when set, replaces the default exponential VM stream
	// with an explicit (already deterministic) arrival schedule — how
	// scenario layers express diurnal and bursty tenant patterns.
	Arrivals []workload.Arrival

	// Charact, when set, memoizes pre-deployment characterization by
	// (seed, characterization-relevant spec): nodes whose key is
	// already cached restore a deep ecosystem snapshot instead of
	// re-running the stress/fault-injection/training campaign. Results
	// are byte-identical either way (pinned by the preset golden
	// tests); only wall-clock changes. Share one cache across the runs
	// of a campaign. Without Archetypes, node seeds within a single
	// run are all distinct, so a run-private cache only pays the
	// snapshot overhead; with Archetypes, the cache is where the
	// per-bin dedup lives (a run-private cache is created when none is
	// supplied).
	Charact *CharactCache

	// Archetypes switches characterization from per-node to per-bin:
	// every node whose spec shares an archetype bin (same silicon part
	// and DRAM configuration — see ArchetypeBin) restores a clone of
	// one bin-seeded characterization (ArchetypeSeed) and reseeds its
	// runtime streams with the node's own seed (core.Ecosystem.Reseed),
	// so characterization cost is O(bins) instead of O(nodes) while
	// runtime stochasticity stays per-node. Results are deterministic
	// and worker/shard-invariant, but intentionally differ from
	// per-node characterization: nodes in a bin share the bin's
	// published margins, weak-cell population and trained predictor
	// instead of drawing their own silicon/DRAM lottery.
	Archetypes bool

	// Shards partitions the node range into contiguous batches
	// dispatched in order across the worker pool, each folding as soon
	// as its last node finishes (shard s folds while shard s+1
	// computes). Sharding never changes results — shards fold in shard
	// order and nodes within a shard in node order, reproducing the
	// unsharded engine's node-order merge exactly — it only bounds the
	// coordinator's unfolded per-node backlog to two in-flight shards
	// and gives OnNode consumers shard-granular streaming. <= 0 means
	// one shard.
	Shards int

	// OnNode, when set, receives each node's finished summary as the
	// coordinator folds it — node order within a shard, shard order
	// across, always from the coordinator goroutine — and
	// Summary.PerNode is left nil: callers that stream do not pay
	// O(nodes) retained reports, and the fingerprint carries aggregate
	// lines only (still deterministic at any worker and shard count,
	// but not comparable against an OnNode-less run's fingerprint).
	// On a failed run, summaries streamed from shards that completed
	// before the failure was discovered will already have been
	// delivered.
	OnNode func(NodeSummary)

	// Lifetime, when set, stretches every node's run across aging
	// epochs: each epoch is a windowed simulation, separated by
	// fast-forward gaps that advance the slow state (silicon aging,
	// DRAM telegraph noise, season, the re-characterization schedule)
	// without stepping windows, with cadence-driven campaigns at epoch
	// entries. Windows is derived from the plan's TotalWindows; an
	// explicit Windows value is ignored. The cloud layer sees the
	// concatenated epoch windows — gaps carry no tenant traffic.
	Lifetime *core.LifetimePlan

	// Drift, when set, arms drift-gated re-characterization on every
	// node (core.Deployment.SetDriftPolicy): a scheduled cadence
	// campaign runs only when the predicted margin drift since the last
	// campaign exceeds MarginFrac of the advised headroom; otherwise
	// the slot is skipped. MarginFrac 0 is the degenerate "always run"
	// policy — scheduling identical to the plain cadence.
	Drift *DriftPolicy
	// ECC, when set, arms each node's correctable-ECC-feedback
	// closed-loop undervolting controller (core.Deployment.SetECCLoop).
	ECC *ECCPolicy
	// WeakGrowthPerDay, when positive, grows every node's DRAM
	// weak-cell population across fast-forward gaps (expected new weak
	// cells per DIMM per day — core.Ecosystem.SetWeakGrowth). Zero
	// leaves the fabricated population static.
	WeakGrowthPerDay float64
}

// DriftPolicy configures drift-gated re-characterization.
type DriftPolicy struct {
	// MarginFrac is the fraction of the advised headroom the
	// accumulated critical-voltage drift must reach before a scheduled
	// campaign is allowed to run.
	MarginFrac float64
}

// ECCPolicy configures closed-loop undervolting.
type ECCPolicy struct {
	// Threshold is the per-window correctable-error count the
	// controller tolerates before backing off (0 = back off on any).
	Threshold int
}

// NodeSpec is one node's complete configuration in a (possibly
// heterogeneous) fleet.
type NodeSpec struct {
	// Part is the node's silicon bin; the zero value means the core
	// default part (the i5-4200U of Table 2).
	Part cpu.PartSpec
	// Mem and MemBytes shape the node's DRAM system and schedulable
	// memory.
	Mem      dram.Config
	MemBytes uint64
	// Mode, RiskTarget and Workload select the node's operating point
	// and guest profile.
	Mode       vfr.Mode
	RiskTarget float64
	Workload   workload.Profile
	// AmbientCPUC and AmbientDIMMC are the initial ambient
	// temperatures; zero means the core defaults (28 / 34 °C).
	AmbientCPUC  float64
	AmbientDIMMC float64
}

// BaseSpec returns the homogeneous per-node spec implied by the
// Config's top-level fields — the starting point Node hooks mutate.
func (cfg Config) BaseSpec() NodeSpec {
	return NodeSpec{
		Mem:        cfg.Mem,
		MemBytes:   cfg.MemBytesPerNode,
		Mode:       cfg.Mode,
		RiskTarget: cfg.RiskTarget,
		Workload:   cfg.Workload,
	}
}

// nodeSpec resolves node i's spec: the Node hook when set, the
// homogeneous base otherwise.
func (cfg Config) nodeSpec(i int) NodeSpec {
	if cfg.Node != nil {
		return cfg.Node(i)
	}
	return cfg.BaseSpec()
}

// StreamDefaults returns the arrival-stream shape Run uses when
// Arrivals is unset: VMs arrivals (3 per node when <= 0) spread over
// the run's horizon with half-horizon lifetimes. Scenario layers that
// pre-generate patterned schedules MUST derive their StreamConfig
// here, so steady and patterned streams can never drift apart.
func (cfg Config) StreamDefaults() workload.StreamConfig {
	n := cfg.VMs
	if n <= 0 {
		n = 3 * cfg.Nodes
	}
	horizon := time.Duration(cfg.Windows) * time.Minute
	if horizon <= 0 {
		horizon = time.Minute
	}
	return workload.StreamConfig{
		N:            n,
		MeanGap:      max(horizon/time.Duration(n+1), time.Minute),
		MeanLifetime: max(horizon/2, 10*time.Minute),
		MinLifetime:  10 * time.Minute,
	}
}

// ModeChange is a mid-run operating-mode switch.
type ModeChange struct {
	Mode       vfr.Mode
	RiskTarget float64
}

// Ambient is a mid-run ambient-temperature change.
type Ambient struct {
	CPUC, DIMMC float64
}

// Perturbation is one window's scenario intervention on one node. Nil
// fields leave the corresponding state untouched; non-nil fields
// persist until the next perturbation changes them (a workload swap
// stays swapped until explicitly reverted).
type Perturbation struct {
	// Workload swaps the node's guest profile (tenant churn, or a
	// droop-virus attack when the profile is workload.DroopVirus).
	Workload *workload.Profile
	// Mode re-enters the deployment at a different mode/risk point.
	Mode *ModeChange
	// Ambient retargets the thermal nodes' environment.
	Ambient *Ambient
}

// DefaultConfig returns a paper-shaped fleet: high-performance mode,
// the UniServer reliability-aware policy, and the testbed DRAM config.
// The migration threshold sits above the risk-target-implied failure
// probability, so proactive draining fires on nodes that are worse
// than their advised point promises, not on every healthy EOP node.
func DefaultConfig(nodes int) Config {
	policy := openstack.UniServerPolicy()
	policy.MigrationThreshold = 0.03
	return Config{
		Nodes:           nodes,
		Seed:            1,
		Mode:            vfr.ModeHighPerformance,
		RiskTarget:      0.01,
		Windows:         120,
		Workload:        workload.WebFrontend(),
		Mem:             dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45},
		MemBytesPerNode: 64 << 30,
		Policy:          policy,
		Repair:          15 * time.Minute,
	}
}

// EffectiveWorkers resolves a requested worker count the way Run
// does: non-positive means GOMAXPROCS, and the pool never exceeds the
// node count.
func EffectiveWorkers(workers, nodes int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nodes {
		workers = nodes
	}
	return workers
}

// EffectiveShards resolves a requested shard count the way Run does:
// non-positive means one shard, and never more shards than nodes.
func EffectiveShards(shards, nodes int) int {
	if shards <= 0 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	return shards
}

// shardRange returns shard s's contiguous node range [lo, hi) under
// the balanced partition Run uses: sizes differ by at most one, and
// concatenating the ranges in shard order yields [0, nodes) exactly.
func shardRange(nodes, shards, s int) (lo, hi int) {
	return nodes * s / shards, nodes * (s + 1) / shards
}

// NodeSeed derives node i's seed from the fleet seed. It is a pure
// function of (seed, i) — independent of worker count and of every
// other node — so characterization outcomes are stable however the
// pool schedules the work.
func NodeSeed(seed uint64, i int) uint64 {
	return rng.New(seed).SplitLabeled(fmt.Sprintf("fleet/node-%04d", i)).Uint64()
}

// NodeSummary is one node's contribution to the fleet summary.
type NodeSummary struct {
	Name               string
	Model              string
	Seed               uint64
	PredictorAcc       float64
	Crashes            int
	Recharacterized    int
	WindowsAtEOP       int
	CorrectableMasked  int
	DRAMCorrected      int
	MeanCPUTempC       float64
	EnergySavedWh      float64
	FinalSafeVoltageMV int
	// FinalAgeShiftMV and Epochs carry the lifetime engine's margin
	// trajectory; Epochs is nil (and both are fingerprint-silent) for
	// plain single-epoch runs, so pre-lifetime goldens are untouched.
	FinalAgeShiftMV float64             `json:"FinalAgeShiftMV,omitempty"`
	Epochs          []core.EpochSummary `json:"Epochs,omitempty"`
	// Adaptive-policy counters — all zero (JSON- and
	// fingerprint-silent) unless a policy is armed, so policy-less
	// goldens are untouched.
	RecharTriggered  int `json:",omitempty"`
	RecharSuppressed int `json:",omitempty"`
	UndervoltSteps   int `json:",omitempty"`
	ECCBackoffs      int `json:",omitempty"`
}

// Summary aggregates a fleet run. All fields except Workers, Shards
// and WallClock are deterministic functions of the Config.
type Summary struct {
	Nodes   int
	Windows int

	// Node-level aggregates (summed in node order).
	Crashes           int
	Fallbacks         int
	Recharacterized   int
	WindowsAtEOP      int
	CorrectableMasked int
	DRAMCorrected     int
	EnergySavedWh     float64
	// MeanCPUTempC averages the per-node mean die temperatures (node
	// order); ambient-temperature scenarios move it.
	MeanCPUTempC float64

	// Adaptive-policy aggregates (summed in node order): the drift
	// gate's run/skip decisions on scheduled campaigns and the ECC
	// closed loop's undervolt steps and backoffs. All zero when no
	// policy is armed.
	RecharTriggered  int `json:",omitempty"`
	RecharSuppressed int `json:",omitempty"`
	UndervoltSteps   int `json:",omitempty"`
	ECCBackoffs      int `json:",omitempty"`

	// Cloud-level aggregates from the manager.
	Scheduled            int
	Rejected             int
	Migrations           int
	SLAViolations        int
	UserFacingViolations int
	EvictedVMs           int
	EnergyKWh            float64
	MeanAvailability     float64

	// PerNode holds every node's summary in node order — nil when the
	// run streamed summaries through Config.OnNode instead.
	PerNode []NodeSummary

	// Workers, Shards and WallClock describe this particular
	// execution; they are excluded from Fingerprint — and from JSON,
	// so serialized reports stay byte-comparable across runs — so
	// summaries can be compared across worker and shard counts.
	// Realized speedup is measured by running the same Config at
	// different worker counts and comparing WallClock — never
	// estimated from goroutine-elapsed times, which oversubscription
	// inflates.
	Workers   int           `json:"-"`
	Shards    int           `json:"-"`
	WallClock time.Duration `json:"-"`
	// PipelinedWindows counts cloud-layer windows the replay consumed
	// while some node was still computing — the coordinator-overlap
	// telemetry behind the parallel-efficiency work. Like WallClock it
	// describes this execution (scheduling-dependent), not the result,
	// so it is excluded from Fingerprint and JSON.
	PipelinedWindows int `json:"-"`
}

// Fingerprint serializes every deterministic field. Two runs of the
// same Config must produce equal fingerprints regardless of worker
// count — the property the paper-reproduction benchmarks rely on.
// Floats are rendered exactly (hex float format), so even a last-ulp
// divergence — the signature of order-dependent accumulation — fails
// the comparison instead of hiding under decimal rounding.
func (s Summary) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d windows=%d crashes=%d fallbacks=%d rechar=%d eop=%d corr=%d dram=%d savedWh=%s\n",
		s.Nodes, s.Windows, s.Crashes, s.Fallbacks, s.Recharacterized,
		s.WindowsAtEOP, s.CorrectableMasked, s.DRAMCorrected, exactFloat(s.EnergySavedWh))
	fmt.Fprintf(&b, "sched=%d rej=%d migr=%d sla=%d uf=%d evict=%d kwh=%s avail=%s\n",
		s.Scheduled, s.Rejected, s.Migrations, s.SLAViolations,
		s.UserFacingViolations, s.EvictedVMs, exactFloat(s.EnergyKWh), exactFloat(s.MeanAvailability))
	// Adaptive-policy runs make the policy decisions fingerprint-
	// visible. The counters are deterministic functions of the Config,
	// so the gate is too; policy-less runs emit nothing here and keep
	// their pre-policy goldens.
	if s.RecharTriggered+s.RecharSuppressed+s.UndervoltSteps+s.ECCBackoffs > 0 {
		fmt.Fprintf(&b, "policy drift+=%d drift-=%d uv=%d backoff=%d\n",
			s.RecharTriggered, s.RecharSuppressed, s.UndervoltSteps, s.ECCBackoffs)
	}
	for _, n := range s.PerNode {
		fmt.Fprintf(&b, "%s model=%s seed=%d acc=%s crashes=%d rechar=%d eop=%d corr=%d dram=%d tempC=%s savedWh=%s safeMV=%d\n",
			n.Name, n.Model, n.Seed, exactFloat(n.PredictorAcc), n.Crashes, n.Recharacterized,
			n.WindowsAtEOP, n.CorrectableMasked, n.DRAMCorrected, exactFloat(n.MeanCPUTempC),
			exactFloat(n.EnergySavedWh), n.FinalSafeVoltageMV)
		if n.RecharTriggered+n.RecharSuppressed+n.UndervoltSteps+n.ECCBackoffs > 0 {
			fmt.Fprintf(&b, "%s policy drift+=%d drift-=%d uv=%d backoff=%d\n",
				n.Name, n.RecharTriggered, n.RecharSuppressed, n.UndervoltSteps, n.ECCBackoffs)
		}
		// Lifetime runs make the margin trajectory fingerprint-visible:
		// one line per epoch (entry aging drift, published safe point,
		// campaigns run) plus the final drift. Single-epoch runs emit
		// nothing here, so their fingerprints match pre-lifetime goldens.
		for _, ep := range n.Epochs {
			fmt.Fprintf(&b, "%s epoch=%d gap=%dd win=%d age=%s safe=%d rechar=%d\n",
				n.Name, ep.Epoch, ep.GapDays, ep.Windows, exactFloat(ep.AgeShiftMV),
				ep.SafeVoltageMV, ep.Recharacterized)
		}
		if len(n.Epochs) > 0 {
			fmt.Fprintf(&b, "%s lifetime finalAge=%s\n", n.Name, exactFloat(n.FinalAgeShiftMV))
		}
	}
	return b.String()
}

// exactFloat renders f without rounding (hexadecimal significand), so
// fingerprint equality means bit-for-bit float equality.
func exactFloat(f float64) string {
	return strconv.FormatFloat(f, 'x', -1, 64)
}

// epochHealth is one node's compact per-window health record, buffered
// while the node batches through its windows and replayed into the
// cloud layer afterwards. It is the dominant O(nodes × windows) term
// of a population run's memory, so it is packed: a window's
// correctable-error count and thermal alarm level fit comfortably in
// 32 and 8 bits (alarms are 0/1/2; ECC events per one-minute window
// are single digits).
type epochHealth struct {
	failProb     float64
	correctable  int32
	thermalAlarm uint8
	crashed      bool
}

// nodeState is one node's slot: the state that outlives the node's
// fused worker task. The ecosystem and deployment live only inside the
// task — what survives is the compact health sequence, the deployment
// summary, the exported cloud node and (when requested) the log
// buffer. Exactly one worker touches a slot during a shard's parallel
// phase; the coordinator reads slots only after the shard's join.
type nodeState struct {
	name  string
	seed  uint64
	model string

	osNode *openstack.Node
	pre    core.PreDeploymentReport
	depSum core.DeploymentSummary
	log    bytes.Buffer

	// health[w] is the node's window-w report; errWindow is the window
	// the node failed at — cfg.Windows when it didn't, charactWindow
	// for failures before the first window (characterization, mode
	// entry, export).
	health    []epochHealth
	errWindow int

	err error
}

// charactWindow is the errWindow value of failures that precede the
// first runtime window; it sorts before every real window, so
// pre-deployment failures win the earliest-failure selection exactly
// as they did when characterization was its own phase.
const charactWindow = -1

// specOptions resolves a node's spec and seed into the core Options
// both characterization paths build from; keeping it single-sourced is
// what guarantees the cached and direct paths configure identical
// ecosystems.
func specOptions(spec NodeSpec, seed uint64) core.Options {
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Mem = spec.Mem
	opts.AmbientCPUC = spec.AmbientCPUC
	opts.AmbientDIMMC = spec.AmbientDIMMC
	if spec.Part.Cores != 0 {
		opts.SetPart(spec.Part)
	}
	return opts
}

// charactBuilder returns the direct-characterization closure for
// (spec, seed): build the ecosystem, run the full pre-deployment
// pipeline, log into out (nil discards). All three characterization
// paths — direct, cached, archetype — run exactly this, so they can
// never configure divergent ecosystems.
func charactBuilder(spec NodeSpec, seed uint64) func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error) {
	return func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error) {
		opts := specOptions(spec, seed)
		opts.HealthLogOut = out
		eco, err := core.New(opts)
		if err != nil {
			return nil, core.PreDeploymentReport{}, err
		}
		pre, err := eco.PreDeployment()
		if err != nil {
			return nil, core.PreDeploymentReport{}, err
		}
		return eco, pre, nil
	}
}

// characterize is the direct path: build the node's ecosystem and run
// the full pre-deployment pipeline on it. The per-node log buffer (and
// the JSON marshal every window that fills it) exists only when the
// caller asked for the log; the health daemon's triggers and retention
// behave identically either way.
func (s *nodeState) characterize(spec NodeSpec, wantLog bool) (*core.Ecosystem, core.PreDeploymentReport, error) {
	var out io.Writer
	if wantLog {
		out = &s.log
	}
	return charactBuilder(spec, s.seed)(out)
}

// restoreFrom materializes this node's ecosystem from a cached
// characterization: replay the captured log bytes (when logging),
// rebind the log writer and re-seat the ambient. With a compiled
// template and a worker arena it takes the stamp path
// (RestoreTemplate.RestoreInto — bulk copies into reused storage, no
// shared locks); the legacy deep restore remains the reference
// implementation, used when either is absent and pinned byte-for-byte
// against the template path by the core equivalence tests.
func (s *nodeState) restoreFrom(snap *core.Snapshot, tmpl *core.RestoreTemplate,
	arena *core.RestoreArena, spec NodeSpec, logBytes []byte, wantLog bool) (*core.Ecosystem, error) {
	ropts := core.RestoreOptions{
		AmbientCPUC:  spec.AmbientCPUC,
		AmbientDIMMC: spec.AmbientDIMMC,
	}
	if wantLog {
		s.log.Write(logBytes)
		ropts.HealthLogOut = &s.log
	}
	if tmpl != nil && arena != nil {
		return tmpl.RestoreInto(arena, ropts)
	}
	return snap.Restore(ropts)
}

// characterizeCached is the snapshot path: the cache runs the direct
// characterization at most once per (seed, spec) key — logging into a
// cache-owned buffer — and every consumer, the characterizing node
// included, replays the captured log bytes and restores an independent
// deep copy. Routing the first consumer through Restore too keeps the
// two paths' outputs pinned to each other: any restore imperfection
// shows up as a fingerprint divergence against the direct path's
// goldens instead of hiding behind a warm cache.
func (s *nodeState) characterizeCached(cache *CharactCache, arena *core.RestoreArena,
	spec NodeSpec, wantLog bool) (*core.Ecosystem, core.PreDeploymentReport, error) {
	snap, tmpl, pre, logBytes, err := cache.characterized(charactKey(s.seed, spec, wantLog), wantLog,
		charactBuilder(spec, s.seed))
	if err != nil {
		return nil, core.PreDeploymentReport{}, err
	}
	eco, err := s.restoreFrom(snap, tmpl, arena, spec, logBytes, wantLog)
	if err != nil {
		return nil, core.PreDeploymentReport{}, err
	}
	return eco, pre, nil
}

// characterizeArchetype is the bin-clone path: the whole archetype bin
// shares one characterization, seeded by the bin (ArchetypeSeed), and
// each node restores a deep copy and reseeds its runtime streams with
// its own node seed. Which node populates the bin entry first can
// never matter — the bin seed, not the node seed, drives the campaign
// — so results are worker- and shard-invariant by construction.
func (s *nodeState) characterizeArchetype(cache *CharactCache, arena *core.RestoreArena,
	fleetSeed uint64, spec NodeSpec, wantLog bool) (*core.Ecosystem, core.PreDeploymentReport, error) {
	binSeed := ArchetypeSeed(fleetSeed, ArchetypeBin(spec))
	snap, tmpl, pre, logBytes, err := cache.characterized(charactKey(binSeed, spec, wantLog), wantLog,
		charactBuilder(spec, binSeed))
	if err != nil {
		return nil, core.PreDeploymentReport{}, err
	}
	eco, err := s.restoreFrom(snap, tmpl, arena, spec, logBytes, wantLog)
	if err != nil {
		return nil, core.PreDeploymentReport{}, err
	}
	if err := eco.Reseed(s.seed); err != nil {
		return nil, core.PreDeploymentReport{}, err
	}
	return eco, pre, nil
}

// Run executes a full fleet lifecycle: every node's fused
// characterize→deploy→step task fans out across a persistent worker
// pool in shard order; the coordinator folds each shard into the
// summary the moment its last node finishes; and a replay goroutine
// assembles the cluster, streams the VM arrivals and feeds the
// buffered health into the cloud layer window by window as windows
// complete — all three overlapped, all three order-preserving, so
// results are byte-identical to the strictly-phased engine at any
// worker and shard count.
func Run(cfg Config) (Summary, error) {
	start := time.Now()
	if cfg.Nodes <= 0 {
		return Summary{}, errors.New("fleet: need at least one node")
	}
	if cfg.Windows < 0 {
		return Summary{}, errors.New("fleet: negative window count")
	}
	if cfg.Lifetime != nil {
		if err := cfg.Lifetime.Validate(); err != nil {
			return Summary{}, fmt.Errorf("fleet: lifetime plan: %w", err)
		}
		// The plan owns the window axis: the cloud layer replays the
		// concatenated epoch windows.
		cfg.Windows = cfg.Lifetime.TotalWindows()
	}
	workers := EffectiveWorkers(cfg.Workers, cfg.Nodes)
	shards := EffectiveShards(cfg.Shards, cfg.Nodes)
	if cfg.Repair <= 0 {
		cfg.Repair = 15 * time.Minute
	}
	charact := cfg.Charact
	if charact == nil && cfg.Archetypes {
		// The cache is where archetype dedup lives: a run without a
		// caller-shared cache gets a run-private one.
		charact = NewCharactCache()
	}

	states := make([]*nodeState, cfg.Nodes)
	for i := range states {
		states[i] = &nodeState{
			name:      fmt.Sprintf("uniserver-%02d", i),
			seed:      NodeSeed(cfg.Seed, i),
			errWindow: cfg.Windows,
		}
	}

	wantLog := cfg.HealthLogOut != nil

	// The pipeline's progress ledger. Workers publish progress through
	// atomic counters (per-window arrival, cloud exports, per-shard
	// completion) and ring the one condition variable only on the
	// *last* arrival of each kind — O(windows + shards) broadcasts for
	// the whole run, not O(nodes × windows) — while the coordinator's
	// fold loop, the dispatcher and the replay goroutine wait on the
	// gate for the specific counter they need. The atomic
	// read-modify-writes form the happens-before chain that makes the
	// buffered health and exported nodes safely visible to the replay
	// goroutine (and keeps the whole structure -race-clean).
	var (
		gateMu sync.Mutex
		gate   = sync.NewCond(&gateMu)
		// windowArrived[w] counts nodes that have buffered window w's
		// health record; the replay goroutine consumes window w once it
		// reaches cfg.Nodes.
		windowArrived = make([]atomic.Int32, cfg.Windows)
		// exportedNodes counts cloud-layer exports; the manager
		// assembles once it reaches cfg.Nodes.
		exportedNodes atomic.Int32
		// finishedNodes counts completed fused tasks — telemetry only
		// (a replayed window is "pipelined" if some node was still
		// computing when it replayed).
		finishedNodes atomic.Int32
		// shardLeft[s] counts shard s's unfinished nodes; the fold loop
		// drains shard s when it reaches zero.
		shardLeft = make([]atomic.Int32, shards)
		// processedShards counts shards the fold loop has drained
		// (folded or skipped); the dispatcher uses it to stay at most
		// two shards ahead of the fold.
		processedShards atomic.Int32
		// runFailed flips once on the first node failure so every gate
		// waiter can abort instead of blocking on progress that will
		// never come.
		runFailed atomic.Bool
	)
	for sh := 0; sh < shards; sh++ {
		lo, hi := shardRange(cfg.Nodes, shards, sh)
		shardLeft[sh].Store(int32(hi - lo))
	}
	// notify wakes every gate waiter. Broadcast under the mutex pairs
	// with the waiters' check-then-Wait loops: a counter that reaches
	// its target between a waiter's check and its Wait cannot lose the
	// wakeup, because this broadcast cannot run until the waiter is
	// parked.
	notify := func() {
		gateMu.Lock()
		gate.Broadcast()
		gateMu.Unlock()
	}

	// failFloor is the earliest failing window any node has reported:
	// once a run is doomed, healthy nodes stop at that window instead
	// of simulating out their full horizon (their buffered health
	// always covers [0, floor), which is all the replay could consume
	// before aborting). Purely an early-exit; results on the success
	// path are untouched. When a health log was requested the early
	// exit is disabled: where a healthy node happens to observe the
	// floor depends on goroutine scheduling, and a log truncated at a
	// scheduling-dependent window would break the contract that the
	// flushed log is byte-identical across runs — on the error path,
	// exactly where the diagnostics matter most.
	earlyExit := cfg.HealthLogOut == nil
	var failFloor atomic.Int64
	failFloor.Store(int64(cfg.Windows))
	reportFail := func(w int) {
		if w < 0 {
			w = 0
		}
		for {
			cur := failFloor.Load()
			if int64(w) >= cur || failFloor.CompareAndSwap(cur, int64(w)) {
				break
			}
		}
		runFailed.Store(true)
		notify()
	}

	// runNode is one node's fused lifecycle — characterization, mode
	// entry, cloud export, the full window sequence, and the final
	// deployment summary. The ecosystem and deployment are locals: when
	// the task returns, only the compact slot state survives — nothing
	// retained aliases ecosystem internals, which is what licenses the
	// worker's restore arena to overwrite the graph in place for the
	// next node. At most `workers` ecosystems exist at any instant,
	// however many nodes the fleet has; cached-path nodes reuse their
	// worker's one arena graph instead of rebuilding it.
	runNode := func(i int, arena *core.RestoreArena) {
		s := states[i]
		failNode := func(w int, err error) {
			s.err, s.errWindow = err, w
			reportFail(w)
		}
		spec := cfg.nodeSpec(i)
		var (
			eco *core.Ecosystem
			pre core.PreDeploymentReport
			err error
		)
		switch {
		case cfg.Archetypes:
			eco, pre, err = s.characterizeArchetype(charact, arena, cfg.Seed, spec, wantLog)
		case charact != nil:
			eco, pre, err = s.characterizeCached(charact, arena, spec, wantLog)
		default:
			eco, pre, err = s.characterize(spec, wantLog)
		}
		if err != nil {
			failNode(charactWindow, fmt.Errorf("fleet: node %d characterization: %w", i, err))
			return
		}
		s.model = eco.Machine.Spec.Model
		s.pre = pre
		dep, err := eco.StartDeployment(spec.Mode, spec.RiskTarget, spec.Workload)
		if err != nil {
			failNode(charactWindow, fmt.Errorf("fleet: node %d mode entry: %w", i, err))
			return
		}
		if cfg.Lifetime != nil {
			dep.SetCadence(cfg.Lifetime.RecharactEvery)
		}
		if cfg.Drift != nil {
			dep.SetDriftPolicy(cfg.Drift.MarginFrac)
		}
		if cfg.ECC != nil {
			dep.SetECCLoop(cfg.ECC.Threshold)
		}
		if cfg.WeakGrowthPerDay > 0 {
			eco.SetWeakGrowth(cfg.WeakGrowthPerDay)
		}
		n, err := eco.Node(s.name, spec.MemBytes)
		if err != nil {
			failNode(charactWindow, fmt.Errorf("fleet: node %d export: %w", i, err))
			return
		}
		s.osNode = n
		if exportedNodes.Add(1) == int32(cfg.Nodes) {
			// Last export: the replay goroutine can assemble the manager
			// and start consuming completed windows.
			notify()
		}

		// Batched window stepping: the node runs its entire window
		// sequence here, buffering a compact health record per window.
		// Node simulations are mutually independent and independent of
		// the cloud layer (the manager never feeds back into a node's
		// ecosystem), so batching removes the per-window barrier — and
		// its goroutine churn — without moving a single rng draw. The
		// scenario interventions land immediately before the window they
		// target: Perturb is pure in (i, w) and touches only node i's
		// state. The buffer is allocated full-length up front and
		// written by index: the replay goroutine reads s.health[w]
		// concurrently (gated on windowArrived[w]), so the slice header
		// must never move again once the first window publishes.
		s.health = make([]epochHealth, cfg.Windows)
		stepWindow := func(w int) bool {
			if earlyExit && int64(w) >= failFloor.Load() {
				return false
			}
			if cfg.Perturb != nil {
				p := cfg.Perturb(i, w)
				if p.Ambient != nil {
					eco.SetAmbient(p.Ambient.CPUC, p.Ambient.DIMMC)
				}
				if p.Workload != nil {
					dep.SetWorkload(*p.Workload)
				}
				if p.Mode != nil {
					if err := dep.SwitchMode(p.Mode.Mode, p.Mode.RiskTarget); err != nil {
						failNode(w, fmt.Errorf("fleet: node %d window %d mode switch: %w", i, w, err))
						return false
					}
				}
			}
			rep, err := dep.Step()
			if err != nil {
				failNode(w, fmt.Errorf("fleet: node %d window %d: %w", i, w, err))
				return false
			}
			fp, err := eco.PredictedFailProb()
			if err != nil {
				failNode(w, fmt.Errorf("fleet: node %d window %d: %w", i, w, err))
				return false
			}
			s.health[w] = epochHealth{
				failProb:     fp,
				correctable:  int32(rep.Correctable),
				thermalAlarm: uint8(rep.ThermalAlarm),
				crashed:      rep.Crashed,
			}
			if windowArrived[w].Add(1) == int32(cfg.Nodes) {
				// Last node to buffer window w: the replay goroutine can
				// consume it while later windows are still computing.
				notify()
			}
			return true
		}
		// The lifetime axis: each epoch batches its windows exactly as
		// the single-epoch engine does; between epochs the node
		// fast-forwards the gap and honours the re-characterization
		// cadence. Gap failures are charged to the first window of the
		// entered epoch — the earliest window the failure can shadow.
		w := 0
		epochs := 1
		if cfg.Lifetime != nil {
			epochs = cfg.Lifetime.Epochs()
		}
		for ei := 0; ei < epochs; ei++ {
			if ei > 0 {
				if earlyExit && int64(w) >= failFloor.Load() {
					return
				}
				if err := dep.FastForward(cfg.Lifetime.Gaps[ei-1]); err != nil {
					failNode(w, fmt.Errorf("fleet: node %d epoch %d gap: %w", i, ei, err))
					return
				}
				if _, err := dep.MaybeRecharacterize(); err != nil {
					failNode(w, fmt.Errorf("fleet: node %d epoch %d entry campaign: %w", i, ei, err))
					return
				}
			}
			epochWindows := cfg.Windows
			if cfg.Lifetime != nil {
				epochWindows = cfg.Lifetime.EpochWindows[ei]
			}
			for k := 0; k < epochWindows; k++ {
				if !stepWindow(w) {
					return
				}
				w++
			}
		}
		if s.err == nil {
			s.depSum = dep.Summary()
		}
	}

	// flushHealthLog concatenates every node's JSON-lines log in node
	// order. It also runs on error paths (best effort) so a failed run
	// still leaves its diagnostics behind — the moment the log matters
	// most. Buffering until here is deliberate: streaming from workers
	// would interleave nodes nondeterministically.
	flushHealthLog := func() error {
		if cfg.HealthLogOut == nil {
			return nil
		}
		for _, s := range states {
			if _, err := cfg.HealthLogOut.Write(s.log.Bytes()); err != nil {
				return fmt.Errorf("fleet: writing health log: %w", err)
			}
		}
		return nil
	}
	fail := func(err error) (Summary, error) {
		_ = flushHealthLog()
		return Summary{}, err
	}

	// The node-level merge, shared by every shard: fold one node into
	// the running aggregates in node order — each float accumulator
	// sees its contributions in exactly the order the unsharded,
	// non-streaming engine added them, which is what makes shard count
	// and OnNode fingerprint-invariant on the aggregate lines.
	sum := Summary{
		Nodes:   cfg.Nodes,
		Windows: cfg.Windows,
		Workers: workers,
		Shards:  shards,
	}
	if cfg.OnNode == nil {
		sum.PerNode = make([]NodeSummary, 0, cfg.Nodes)
	}
	foldNode := func(s *nodeState) {
		d := s.depSum
		sum.Crashes += d.Crashes
		sum.Fallbacks += d.Fallbacks
		sum.Recharacterized += d.Recharacterized
		sum.WindowsAtEOP += d.WindowsAtEOP
		sum.CorrectableMasked += d.CorrectableMasked
		sum.DRAMCorrected += d.DRAMCorrected
		sum.EnergySavedWh += d.EnergySavedWh
		sum.MeanCPUTempC += d.MeanCPUTempC
		sum.RecharTriggered += d.RecharTriggered
		sum.RecharSuppressed += d.RecharSuppressed
		sum.UndervoltSteps += d.UndervoltSteps
		sum.ECCBackoffs += d.ECCBackoffs
		ns := NodeSummary{
			Name:               s.name,
			Model:              s.model,
			Seed:               s.seed,
			PredictorAcc:       s.pre.PredictorAcc,
			Crashes:            d.Crashes,
			Recharacterized:    d.Recharacterized,
			WindowsAtEOP:       d.WindowsAtEOP,
			CorrectableMasked:  d.CorrectableMasked,
			DRAMCorrected:      d.DRAMCorrected,
			MeanCPUTempC:       d.MeanCPUTempC,
			EnergySavedWh:      d.EnergySavedWh,
			FinalSafeVoltageMV: d.FinalSafeVoltageMV,
			Epochs:             d.Epochs,
			RecharTriggered:    d.RecharTriggered,
			RecharSuppressed:   d.RecharSuppressed,
			UndervoltSteps:     d.UndervoltSteps,
			ECCBackoffs:        d.ECCBackoffs,
		}
		if len(d.Epochs) > 0 {
			ns.FinalAgeShiftMV = d.FinalAgeShiftMV
		}
		// The fold is the last reader of the deployment summary and the
		// characterization report: zero both so the only per-node state
		// retained to the replay phase is the compact health buffer and
		// the exported cloud-layer node. pre.Margins in particular keeps
		// a node's whole EOP margin table alive — an O(nodes × cores)
		// term that would dominate peak heap at 100k nodes.
		s.depSum = core.DeploymentSummary{}
		s.pre = core.PreDeploymentReport{}
		if cfg.OnNode != nil {
			cfg.OnNode(ns)
			return
		}
		sum.PerNode = append(sum.PerNode, ns)
	}

	// ---- Pipelined execution ----
	//
	// Three overlapped roles replace the old strictly-phased
	// compute-then-fold-then-replay sequence, with every ordered
	// operation still issued from exactly one goroutine in exactly the
	// old order:
	//
	//   dispatcher   feeds node indices to the worker pool in node
	//                order, shard by shard, staying at most two shards
	//                ahead of the fold so the unfolded per-node backlog
	//                (pre-reports, deployment summaries) stays bounded
	//                by shard size, not fleet size;
	//   workers      run the fused node tasks (unchanged);
	//   coordinator  folds shard s in node order the moment its last
	//                node finishes — while shard s+1 is still
	//                computing;
	//   replay       advances the cloud layer through window w the
	//                moment all nodes have buffered w — while later
	//                windows are still computing.
	//
	// Fingerprint identity is structural: folds still happen shard
	// order × node order on one goroutine, and the replay still feeds
	// the manager byte-identical inputs window order × node order on
	// one goroutine. Only the *interleaving* of those two serial
	// streams with worker compute changed, and neither stream reads
	// anything a worker still writes (window gating and the export
	// count provide the happens-before edges).

	// Replay goroutine: assemble the cluster once every node has
	// exported, then chase the windowArrived frontier.
	type replayResult struct {
		mgr        *openstack.Manager
		evictedVMs int
		pipelined  int
		err        error
	}
	replayCh := make(chan replayResult, 1)
	go func() {
		var res replayResult
		defer func() { replayCh <- res }()
		// Deterministic VM arrival stream for the scheduler to chew on
		// — an explicit schedule (scenario layers) or the default
		// exponential stream. Pure function of the Config, so it can
		// build before the fleet finishes exporting.
		arrivals := cfg.Arrivals
		if arrivals == nil {
			var err error
			arrivals, err = workload.Stream(cfg.StreamDefaults(), rng.New(cfg.Seed).SplitLabeled("fleet/arrivals"))
			if err != nil {
				res.err = err
				return
			}
		}
		gateMu.Lock()
		for exportedNodes.Load() < int32(cfg.Nodes) && !runFailed.Load() {
			gate.Wait()
		}
		aborted := exportedNodes.Load() < int32(cfg.Nodes)
		gateMu.Unlock()
		if aborted {
			// A node failed before exporting; the run is doomed and the
			// coordinator will report the earliest node failure.
			return
		}
		// Cluster assembly in node order.
		osNodes := make([]*openstack.Node, len(states))
		for i, s := range states {
			osNodes[i] = s.osNode
		}
		mgr, err := openstack.NewManager(cfg.Policy, osNodes...)
		if err != nil {
			res.err = err
			return
		}
		res.mgr = mgr
		// The replay advances the cloud layer in window order over the
		// buffered health: arrivals and departures resolve before each
		// epoch (so newly placed VMs are exposed to that window's
		// crash/migration outcome, as in the stream simulator), then
		// the epoch's health lands in the scheduler in node order. The
		// manager sees byte-identical inputs in the identical order as
		// under per-window barriers — and as at any other worker or
		// shard count — because window w is consumed only after every
		// node has buffered it.
		cursor := openstack.NewStreamCursor(arrivals)
		health := make([]openstack.NodeHealth, len(states))
		for w := 0; w < cfg.Windows; w++ {
			gateMu.Lock()
			for windowArrived[w].Load() < int32(cfg.Nodes) && !runFailed.Load() {
				gate.Wait()
			}
			aborted := windowArrived[w].Load() < int32(cfg.Nodes)
			gateMu.Unlock()
			if aborted {
				// Some node failed at or before w and will never buffer
				// it; the manager's partial replay is discarded.
				return
			}
			if finishedNodes.Load() < int32(cfg.Nodes) {
				res.pipelined++
			}
			now := time.Duration(w) * time.Minute
			cursor.Advance(mgr, now)
			for i, s := range states {
				h := s.health[w]
				health[i] = openstack.NodeHealth{
					Name:         s.name,
					FailProb:     h.failProb,
					Crashed:      h.crashed,
					Correctable:  int(h.correctable),
					ThermalAlarm: int(h.thermalAlarm),
				}
			}
			stats, err := mgr.StepFleet(health, time.Minute, now, cfg.Repair)
			if err != nil {
				res.err = err
				return
			}
			res.evictedVMs += stats.EvictedVMs
		}
	}()

	// Worker pool: persistent across shards (no per-shard goroutine
	// churn or join barrier), consuming node indices in dispatch order.
	type job struct{ node, shard int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One restore arena per worker goroutine: the cached paths
			// stamp each node's ecosystem into it, reusing the graph
			// built by the worker's first node.
			arena := core.NewRestoreArena()
			for j := range jobs {
				runNode(j.node, arena)
				finishedNodes.Add(1)
				if shardLeft[j.shard].Add(-1) == 0 {
					// Last node of the shard: the fold loop can drain it.
					notify()
				}
			}
		}()
	}

	// Dispatcher: node order, shard by shard, gated two shards ahead of
	// the fold. Waiting on processedShards (not mere shard completion)
	// keeps at most two shards' unfolded state alive — the computing
	// shard and the one the coordinator is folding — preserving the
	// bounded-backlog property the 100k-node scale-out relies on, while
	// never idling the pool at a shard boundary the way the old
	// per-shard join barrier did.
	go func() {
		defer close(jobs)
		for sh := 0; sh < shards; sh++ {
			if sh >= 2 {
				gateMu.Lock()
				for processedShards.Load() < int32(sh-1) && !runFailed.Load() {
					gate.Wait()
				}
				gateMu.Unlock()
			}
			lo, hi := shardRange(cfg.Nodes, shards, sh)
			for i := lo; i < hi; i++ {
				jobs <- job{node: i, shard: sh}
			}
		}
	}()

	// Fold loop (coordinator): shards drain strictly in shard order,
	// nodes within a shard in node order, exactly as the phased engine
	// folded them. A shard whose range (or any earlier shard) holds a
	// failed node is left unfolded — the run is doomed and returns the
	// earliest failure below — so OnNode consumers only ever see
	// summaries from the error-free prefix.
	failed := false
	for sh := 0; sh < shards; sh++ {
		gateMu.Lock()
		for shardLeft[sh].Load() > 0 {
			gate.Wait()
		}
		gateMu.Unlock()
		if !failed {
			lo, hi := shardRange(cfg.Nodes, shards, sh)
			for i := lo; i < hi; i++ {
				if states[i].err != nil {
					failed = true
					break
				}
			}
			if !failed {
				for i := lo; i < hi; i++ {
					foldNode(states[i])
				}
			}
		}
		processedShards.Add(1)
		notify()
	}
	wg.Wait()

	// Join the replay before touching any error path: after this
	// receive no goroutine of this run is live.
	rr := <-replayCh
	if failed {
		// Earliest failing window wins; ties resolve to the lowest node
		// index (states are scanned in node order). Pre-deployment
		// failures carry charactWindow and therefore outrank every
		// stepping failure, exactly as when characterization was a
		// separate phase — and exactly as when replay errors could not
		// coexist with node failures: a doomed run reports its node
		// failure, never the aborted replay.
		failWindow, failErr := cfg.Windows, error(nil)
		for _, s := range states {
			if s.err != nil && s.errWindow < failWindow {
				failWindow, failErr = s.errWindow, s.err
			}
		}
		return fail(failErr)
	}
	if rr.err != nil {
		return fail(rr.err)
	}
	mgr := rr.mgr

	sum.MeanCPUTempC /= float64(cfg.Nodes)
	sum.Scheduled = mgr.Scheduled
	sum.Rejected = mgr.Rejected
	sum.Migrations = mgr.Migrations
	sum.SLAViolations = mgr.SLAViolations
	sum.UserFacingViolations = mgr.UserFacingViolations
	sum.EnergyKWh = mgr.EnergyJ / 3.6e6
	sum.MeanAvailability = mgr.MeanAvailability()
	sum.EvictedVMs = rr.evictedVMs
	sum.PipelinedWindows = rr.pipelined

	if err := flushHealthLog(); err != nil {
		return sum, err
	}
	sum.WallClock = time.Since(start)
	return sum, nil
}
