package fleet

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniserver/internal/core"
)

// singleflightDeadline bounds the in-test waits that prove
// concurrency properties: a cache that serializes where it must not
// (or duplicates where it must not) fails by timing out here rather
// than deadlocking the suite.
const singleflightDeadline = 30 * time.Second

// TestCharactCacheCoalescing proves the per-key singleflight: N
// goroutines missing the same key concurrently run exactly ONE
// characterization — the other N−1 coalesce onto the in-flight run
// and are served its result. The characterizing callback refuses to
// finish until the cache has counted all N−1 coalesced waiters, so
// the assertion cannot pass by accident of scheduling (e.g. the N−1
// arriving after the entry completed, which would be plain hits).
func TestCharactCacheCoalescing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real characterizations; skipping in -short")
	}
	for _, n := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("goroutines=%d", n), func(t *testing.T) {
			cache := NewCharactCache()
			spec := DefaultConfig(1).BaseSpec()
			seed := NodeSeed(7, 0)
			key := charactKey(seed, spec, false)
			inner := charactBuilder(spec, seed)
			characterize := func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error) {
				deadline := time.Now().Add(singleflightDeadline)
				for cache.Stats().Coalesced < uint64(n-1) {
					if time.Now().After(deadline) {
						t.Errorf("only %d of %d waiters coalesced onto the in-flight characterization",
							cache.Stats().Coalesced, n-1)
						break
					}
					time.Sleep(time.Millisecond)
				}
				return inner(out)
			}
			var wg sync.WaitGroup
			snaps := make([]*core.Snapshot, n)
			for g := 0; g < n; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					snap, _, _, _, err := cache.characterized(key, false, characterize)
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					snaps[g] = snap
				}()
			}
			wg.Wait()
			st := cache.Stats()
			if st.Misses != 1 {
				t.Errorf("want exactly 1 characterization, got %d", st.Misses)
			}
			if st.Hits != uint64(n-1) {
				t.Errorf("want %d hits, got %d", n-1, st.Hits)
			}
			if st.Coalesced != uint64(n-1) {
				t.Errorf("want %d coalesced, got %d", n-1, st.Coalesced)
			}
			for g, snap := range snaps {
				if snap != snaps[0] {
					t.Errorf("goroutine %d was served a different entry", g)
				}
			}
		})
	}
}

// TestCharactCacheDistinctKeysParallel proves misses on distinct keys
// characterize in parallel: every callback blocks until all K are
// simultaneously in flight, which can only happen if no global lock
// serializes them. Under the old single-mutex cache this test times
// out — one characterization at a time, the rest queued on the lock.
func TestCharactCacheDistinctKeysParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real characterizations; skipping in -short")
	}
	for _, k := range []int{4, 8} {
		t.Run(fmt.Sprintf("keys=%d", k), func(t *testing.T) {
			cache := NewCharactCache()
			spec := DefaultConfig(1).BaseSpec()
			var inflight atomic.Int32
			allIn := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < k; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					seed := NodeSeed(11, g) // distinct seeds → distinct keys
					inner := charactBuilder(spec, seed)
					characterize := func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error) {
						if inflight.Add(1) == int32(k) {
							close(allIn)
						}
						select {
						case <-allIn:
						case <-time.After(singleflightDeadline):
							t.Errorf("characterizations serialized: only %d of %d keys in flight together",
								inflight.Load(), k)
						}
						return inner(out)
					}
					if _, _, _, _, err := cache.characterized(charactKey(seed, spec, false), false, characterize); err != nil {
						t.Errorf("key %d: %v", g, err)
					}
				}()
			}
			wg.Wait()
			st := cache.Stats()
			if st.Misses != uint64(k) || st.Hits != 0 || st.Coalesced != 0 {
				t.Errorf("want %d misses / 0 hits / 0 coalesced, got %d / %d / %d",
					k, st.Misses, st.Hits, st.Coalesced)
			}
		})
	}
}

// TestFleetArchetypeSingleflight pins the singleflight cache at the
// fleet level: an archetype run whose nodes all share one bin must
// characterize exactly once at any worker count — duplicate concurrent
// misses coalesce rather than redundantly characterizing — and the
// fleet fingerprint must be byte-identical across worker counts, i.e.
// who wins the race to populate the entry is unobservable.
func TestFleetArchetypeSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	const nodes = 8
	var baseline string
	for _, workers := range []int{1, 4, 8} {
		cache := NewCharactCache()
		cfg := DefaultConfig(nodes)
		cfg.Workers = workers
		cfg.Windows = 10
		cfg.Seed = 7
		cfg.Archetypes = true
		cfg.Charact = cache
		sum, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		st := cache.Stats()
		if st.Misses != 1 {
			t.Errorf("workers=%d: want 1 characterization for the single bin, got %d", workers, st.Misses)
		}
		if st.Hits != nodes-1 {
			t.Errorf("workers=%d: want %d hits, got %d", workers, nodes-1, st.Hits)
		}
		if workers == 1 && st.Coalesced != 0 {
			t.Errorf("workers=1: sequential run cannot coalesce, got %d", st.Coalesced)
		}
		if baseline == "" {
			baseline = sum.Fingerprint()
		} else if sum.Fingerprint() != baseline {
			t.Errorf("workers=%d: fingerprint diverged from the 1-worker run", workers)
		}
	}
}
