package fleet

import (
	"reflect"
	"strings"
	"testing"

	"uniserver/internal/cpu"
)

// TestFleetShardInvariance pins the scale-out contract at the fleet
// level: shard count — like worker count — never changes results. The
// shards fold in shard order and nodes within a shard in node order,
// so every (shards, workers) cell must reproduce the unsharded,
// single-worker fingerprint byte for byte.
func TestFleetShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	t.Parallel()
	base, err := Run(smallConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()
	for _, shards := range []int{2, 3, 8} {
		for _, workers := range []int{1, 4, 8} {
			cfg := smallConfig(5, workers)
			cfg.Shards = shards
			got, err := Run(cfg)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if got.Shards != EffectiveShards(shards, cfg.Nodes) {
				t.Fatalf("shards=%d: summary records %d shards, want %d",
					shards, got.Shards, EffectiveShards(shards, cfg.Nodes))
			}
			if got.Fingerprint() != want {
				t.Errorf("shards=%d workers=%d diverged from unsharded run:\n--- want ---\n%s--- got ---\n%s",
					shards, workers, want, got.Fingerprint())
			}
		}
	}
}

// TestShardRangePartition pins the balanced contiguous partition:
// concatenating the shard ranges in shard order yields [0, nodes)
// exactly, with sizes differing by at most one.
func TestShardRangePartition(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ nodes, shards int }{
		{1, 1}, {5, 2}, {7, 3}, {8, 8}, {100000, 7},
	} {
		next, minSz, maxSz := 0, tc.nodes, 0
		for s := 0; s < tc.shards; s++ {
			lo, hi := shardRange(tc.nodes, tc.shards, s)
			if lo != next || hi <= lo {
				t.Fatalf("nodes=%d shards=%d: shard %d range [%d,%d) does not continue from %d",
					tc.nodes, tc.shards, s, lo, hi, next)
			}
			next = hi
			minSz = min(minSz, hi-lo)
			maxSz = max(maxSz, hi-lo)
		}
		if next != tc.nodes {
			t.Fatalf("nodes=%d shards=%d: ranges end at %d", tc.nodes, tc.shards, next)
		}
		if maxSz-minSz > 1 {
			t.Fatalf("nodes=%d shards=%d: unbalanced shard sizes (%d..%d)", tc.nodes, tc.shards, minSz, maxSz)
		}
	}
}

// archetypeConfig is a two-bin heterogeneous fleet under
// archetype-clone characterization.
func archetypeConfig(nodes, workers, shards int) Config {
	cfg := smallConfig(nodes, workers)
	cfg.Shards = shards
	cfg.Archetypes = true
	base := cfg.BaseSpec()
	parts := []cpu.PartSpec{cpu.PartI5_4200U(), cpu.PartI7_3970X()}
	cfg.Node = func(i int) NodeSpec {
		spec := base
		spec.Part = parts[i%len(parts)]
		return spec
	}
	return cfg
}

// TestFleetArchetypeCharacterizesPerBin proves the O(bins)
// characterization claim with cache stats: a six-node, two-bin fleet
// runs exactly two characterizations, and every node restores a clone.
// Within a bin the characterized state is shared (same predictor
// accuracy, same published safe point) while runtime diverges per node
// (distinct seeds reseed the restored streams).
func TestFleetArchetypeCharacterizesPerBin(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	t.Parallel()
	cache := NewCharactCache()
	cfg := archetypeConfig(6, 4, 1)
	cfg.Charact = cache
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 2 || st.Hits != 4 {
		t.Fatalf("want 2 misses (one per bin) / 4 hits, got %d / %d", st.Misses, st.Hits)
	}
	// Nodes 0 and 2 share the i5 bin: bin-level characterization state
	// must match exactly; per-node runtime noise must not.
	a, b := sum.PerNode[0], sum.PerNode[2]
	if a.Model != b.Model || a.PredictorAcc != b.PredictorAcc {
		t.Fatalf("same-bin nodes diverged in characterized state: %+v vs %+v", a, b)
	}
	if a.Seed == b.Seed {
		t.Fatal("same-bin nodes share a node seed")
	}
	// Same-bin nodes draw independent runtime streams from their own
	// seeds (core.TestReseedRepositionsStreams pins the stream
	// positions); on a quiet run their summaries still match, because
	// nothing stochastic fired — which is itself the bin contract.
	if sum.PerNode[0].Model == sum.PerNode[1].Model {
		t.Fatal("alternating bins produced one model")
	}
}

// TestFleetArchetypeDeterministic pins that archetype-clone runs obey
// the same invariance contract as per-node characterization: any
// (shards, workers) cell — each with its own fresh cache, so the
// population order differs — reproduces the same fingerprint.
func TestFleetArchetypeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	t.Parallel()
	run := func(workers, shards int) string {
		sum, err := Run(archetypeConfig(5, workers, shards))
		if err != nil {
			t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
		}
		return sum.Fingerprint()
	}
	want := run(1, 1)
	for _, cell := range []struct{ workers, shards int }{{4, 1}, {1, 2}, {4, 2}, {8, 8}} {
		if got := run(cell.workers, cell.shards); got != want {
			t.Errorf("workers=%d shards=%d diverged:\n--- want ---\n%s--- got ---\n%s",
				cell.workers, cell.shards, want, got)
		}
	}

	// Archetype mode is intentionally a different experiment than
	// per-node characterization: the bin seed, not the node seed,
	// drives the silicon/DRAM lottery.
	perNode, err := Run(smallConfig(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if perNode.Fingerprint() == want {
		t.Fatal("archetype run unexpectedly matched per-node characterization")
	}
}

// TestFleetOnNodeStreaming pins the streaming merge: OnNode delivers
// exactly the summaries a retaining run would have put in PerNode, in
// node order, while the summary itself retains none — and the
// aggregate fingerprint lines stay byte-identical to the retaining
// run's.
func TestFleetOnNodeStreaming(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	t.Parallel()
	ref, err := Run(smallConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(4, 2)
	cfg.Shards = 2
	var streamed []NodeSummary
	cfg.OnNode = func(ns NodeSummary) { streamed = append(streamed, ns) }
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.PerNode != nil {
		t.Fatalf("streaming run retained %d per-node summaries", len(sum.PerNode))
	}
	if !reflect.DeepEqual(streamed, ref.PerNode) {
		t.Fatalf("streamed summaries diverged from retained ones:\n%+v\nvs\n%+v", streamed, ref.PerNode)
	}
	refLines := strings.SplitAfter(ref.Fingerprint(), "\n")
	if got, want := sum.Fingerprint(), refLines[0]+refLines[1]; got != want {
		t.Fatalf("streaming run's aggregate fingerprint diverged:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}
