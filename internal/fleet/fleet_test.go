package fleet

import (
	"bytes"
	"strings"
	"testing"
)

// smallConfig keeps test runs fast: few nodes, a short horizon.
func smallConfig(nodes, workers int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Workers = workers
	cfg.Windows = 40
	cfg.Seed = 7
	return cfg
}

// TestFleetDeterministicAcrossWorkerCounts is the contract the whole
// engine is built around: the same seed must produce byte-identical
// fleet fingerprints at 1, 4 and 8 workers. Run with -race to also
// verify the lock-free stepping really is data-race free.
func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	var want string
	for _, workers := range []int{1, 4, 8} {
		sum, err := Run(smallConfig(3, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := sum.Fingerprint()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("fingerprint diverged at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, want, workers, got)
		}
	}
}

// TestFleetHealthLogNodeOrder checks the concatenated JSON-lines log
// is merged in node order, so the log itself is deterministic too.
func TestFleetHealthLogNodeOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	run := func(workers int) string {
		cfg := smallConfig(2, workers)
		cfg.Windows = 10
		var buf bytes.Buffer
		cfg.HealthLogOut = &buf
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq, par := run(1), run(4)
	if seq == "" {
		t.Fatal("no health log produced")
	}
	if seq != par {
		t.Fatal("health log differs between worker counts")
	}
}

// TestFleetSummaryShape sanity-checks the aggregates of a short run.
func TestFleetSummaryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	cfg := smallConfig(2, 2)
	cfg.Windows = 20
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes != 2 || sum.Windows != 20 || len(sum.PerNode) != 2 {
		t.Fatalf("summary shape wrong: %+v", sum)
	}
	if sum.WindowsAtEOP == 0 {
		t.Fatal("no windows at EOP: fleet never reached extended operating points")
	}
	if sum.Scheduled == 0 {
		t.Fatal("no VMs scheduled onto the fleet")
	}
	if sum.EnergyKWh <= 0 {
		t.Fatal("no cloud energy accounted")
	}
	for i, n := range sum.PerNode {
		if n.Seed != NodeSeed(cfg.Seed, i) {
			t.Fatalf("node %d seed mismatch", i)
		}
		if n.PredictorAcc <= 0.5 {
			t.Fatalf("node %d predictor accuracy %.2f implausible", i, n.PredictorAcc)
		}
	}
	if !strings.Contains(sum.Fingerprint(), "uniserver-01") {
		t.Fatal("fingerprint missing per-node lines")
	}
}

// TestFleetConfigValidation exercises the error paths.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Nodes: 0}); err == nil {
		t.Fatal("zero-node fleet accepted")
	}
	cfg := DefaultConfig(1)
	cfg.Windows = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative window count accepted")
	}
}

// TestNodeSeedPure checks the seed derivation is a pure function and
// collision-free over a plausible fleet size.
func TestNodeSeedPure(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1024; i++ {
		s := NodeSeed(99, i)
		if s != NodeSeed(99, i) {
			t.Fatalf("NodeSeed(99, %d) not stable", i)
		}
		if j, dup := seen[s]; dup {
			t.Fatalf("NodeSeed collision between nodes %d and %d", i, j)
		}
		seen[s] = i
	}
}
