package fleet

import (
	"runtime"
	"sync/atomic"
	"time"
)

// HeapWatermark runs fn while sampling the live heap and returns the
// high-water runtime.MemStats HeapAlloc observed (bytes). It is how
// the bounded-memory claim is measured — by the CLI's fleet runs and
// by BenchmarkFleetRuntime's peak_bytes — rather than asserted: peak
// live heap under the sharded engine should track
// workers × ecosystem-size, not nodes × ecosystem-size.
//
// Sampling at 5 ms can miss a transient spike between GC cycles, so
// the number is a floor on the true peak; it is plenty to distinguish
// an O(workers) curve from an O(nodes) one, which is the longitudinal
// claim BENCH_fleet.json records.
func HeapWatermark(fn func()) uint64 {
	var peak atomic.Uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		for {
			cur := peak.Load()
			if ms.HeapAlloc <= cur || peak.CompareAndSwap(cur, ms.HeapAlloc) {
				return
			}
		}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	sample()
	fn()
	sample()
	close(stop)
	<-done
	return peak.Load()
}
