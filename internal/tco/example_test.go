package tco_test

import (
	"fmt"

	"uniserver/internal/tco"
)

// Table 3 of the paper: the four energy-efficiency sources compose to
// a 36x gain, worth ~1.15x in TCO from energy alone.
func ExampleProjectTable3() {
	p, _ := tco.ProjectTable3(tco.DefaultCloudDC(), tco.Table3Gains())
	fmt.Printf("overall EE: %.0fx\n", p.OverallEE)
	fmt.Printf("TCO improvement: %.2fx\n", p.TCOImprovement)
	// Output:
	// overall EE: 36x
	// TCO improvement: 1.15x
}
