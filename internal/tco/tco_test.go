package tco

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable3Gains(t *testing.T) {
	g := Table3Gains()
	if g.Scaling != 1.5 || g.SWMaturity != 4 || g.Fog != 2 || g.Margins != 3 {
		t.Fatalf("gains = %+v", g)
	}
	if got := g.OverallEE(); got != 36 {
		t.Fatalf("overall EE = %v, want 36 (Table 3)", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (GainSources{Scaling: 0, SWMaturity: 1, Fog: 1, Margins: 1}).Validate(); err == nil {
		t.Fatal("zero source accepted")
	}
}

func TestDataCenterValidation(t *testing.T) {
	if err := DefaultCloudDC().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultEdgeDC().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCloudDC()
	bad.Servers = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero servers accepted")
	}
	bad = DefaultCloudDC()
	bad.PUE = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("PUE < 1 accepted")
	}
	bad = DefaultCloudDC()
	bad.ServerCostUSD = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestTCODecomposition(t *testing.T) {
	d := DefaultCloudDC()
	total := d.CapExUSD() + d.EnergyUSD() + d.MaintenanceUSD()
	if math.Abs(total-d.TCOUSD()) > 1e-6 {
		t.Fatalf("TCO decomposition inconsistent")
	}
	if d.CapExUSD() != 1000*(2600+1000) {
		t.Fatalf("CapEx = %v", d.CapExUSD())
	}
	// Energy: 1000 servers * 130W * 1.5 PUE * 24*365*4 h * 0.10 $/kWh.
	wantEnergy := 1000.0 * 0.13 * 1.5 * 24 * 365 * 4 * 0.10
	if math.Abs(d.EnergyUSD()-wantEnergy) > 1 {
		t.Fatalf("Energy = %v, want %v", d.EnergyUSD(), wantEnergy)
	}
}

// TestTable3TCOImprovement checks the paper's bottom line: applying
// the 36x overall EE gain to a realistic deployment yields a ~1.15x
// TCO improvement from energy alone.
func TestTable3TCOImprovement(t *testing.T) {
	p, err := ProjectTable3(DefaultCloudDC(), Table3Gains())
	if err != nil {
		t.Fatal(err)
	}
	if p.OverallEE != 36 {
		t.Fatalf("overall EE = %v", p.OverallEE)
	}
	if p.TCOImprovement < 1.12 || p.TCOImprovement > 1.18 {
		t.Fatalf("TCO improvement = %.3fx, paper estimates 1.15x", p.TCOImprovement)
	}
	if !strings.Contains(p.String(), "36.0x") {
		t.Fatalf("projection rendering: %s", p)
	}
	// Sanity: the energy share that makes 1.15x possible is ~13-14%.
	share := DefaultCloudDC().EnergyShare()
	if share < 0.12 || share > 0.16 {
		t.Fatalf("energy share = %.3f, calibration drifted", share)
	}
}

func TestProjectValidation(t *testing.T) {
	bad := DefaultCloudDC()
	bad.Servers = 0
	if _, err := ProjectTable3(bad, Table3Gains()); err == nil {
		t.Fatal("invalid DC accepted")
	}
	if _, err := ProjectTable3(DefaultCloudDC(), GainSources{}); err == nil {
		t.Fatal("invalid gains accepted")
	}
}

func TestApplyEnergyEfficiency(t *testing.T) {
	d := DefaultCloudDC()
	improved, err := d.ApplyEnergyEfficiency(2)
	if err != nil {
		t.Fatal(err)
	}
	if improved.ServerAvgPowerW != d.ServerAvgPowerW/2 {
		t.Fatal("power not halved")
	}
	if improved.CapExUSD() != d.CapExUSD() {
		t.Fatal("EE must not change CapEx")
	}
	if _, err := d.ApplyEnergyEfficiency(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestYieldDiscountCompoundsImprovement(t *testing.T) {
	base := DefaultCloudDC()
	eeOnly, err := base.ApplyEnergyEfficiency(36)
	if err != nil {
		t.Fatal(err)
	}
	withYield, err := eeOnly.ApplyYieldDiscount(0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "The actual TCO improvement will be even more because of
	// lower chip cost due to higher yield."
	if Improvement(base, withYield) <= Improvement(base, eeOnly) {
		t.Fatal("yield discount did not compound the improvement")
	}
	if _, err := base.ApplyYieldDiscount(1); err == nil {
		t.Fatal("100% discount accepted")
	}
	if _, err := base.ApplyYieldDiscount(-0.1); err == nil {
		t.Fatal("negative discount accepted")
	}
}

func TestEdgeDCCheaperPerServer(t *testing.T) {
	edge := DefaultEdgeDC()
	cloud := DefaultCloudDC()
	edgePer := edge.TCOUSD() / float64(edge.Servers)
	cloudPer := cloud.TCOUSD() / float64(cloud.Servers)
	if edgePer >= cloudPer {
		t.Fatalf("edge per-server TCO %v should undercut cloud %v", edgePer, cloudPer)
	}
	if edge.PUE >= cloud.PUE {
		t.Fatal("edge should avoid cooling overhead")
	}
}

func TestImprovementMonotoneInEEProperty(t *testing.T) {
	base := DefaultCloudDC()
	err := quick.Check(func(raw uint8) bool {
		f1 := 1 + float64(raw%50)
		f2 := f1 + 1
		a, err1 := base.ApplyEnergyEfficiency(f1)
		b, err2 := base.ApplyEnergyEfficiency(f2)
		if err1 != nil || err2 != nil {
			return false
		}
		return Improvement(base, b) >= Improvement(base, a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestImprovementBoundedByEnergyShare(t *testing.T) {
	// TCO improvement from EE alone can never exceed 1/(1-energyShare).
	base := DefaultCloudDC()
	bound := 1 / (1 - base.EnergyShare())
	improved, err := base.ApplyEnergyEfficiency(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if got := Improvement(base, improved); got > bound+1e-9 {
		t.Fatalf("improvement %v exceeds theoretical bound %v", got, bound)
	}
}
