// Package tco implements the Total Cost of Ownership estimation tool
// the paper commits to building (innovation vii, Section 6.D / Table
// 3), following the analytical CapEx/OpEx framework of Hardy et al.
// ("An Analytical Framework for Estimating TCO and Exploring Data
// Center Design Space", ISPASS 2013) that the paper cites.
//
// Table 3 of the paper decomposes the projected 2019 energy-efficiency
// improvement into four sources — technology scaling and FinFET
// leakage reduction (1.5x), ARM server software maturity (4x), running
// at the Edge/fog (2x), and operating at extended margins (3x) — for
// an overall 36x energy-efficiency gain, and estimates a 1.15x TCO
// improvement from the energy-efficiency gains alone (more when the
// higher yield of margin-tolerant parts lowers chip cost).
package tco

import (
	"errors"
	"fmt"
)

// GainSources decomposes an energy-efficiency improvement multiplier
// into the paper's four sources.
type GainSources struct {
	Scaling    float64 // technology scaling + FinFET leakage reduction
	SWMaturity float64 // ARM server software maturity
	Fog        float64 // efficiency from running at the Edge ("fog")
	Margins    float64 // operating at extended operating points
}

// Table3Gains returns the paper's Table 3 row.
func Table3Gains() GainSources {
	return GainSources{Scaling: 1.5, SWMaturity: 4, Fog: 2, Margins: 3}
}

// OverallEE returns the combined energy-efficiency multiplier (the
// product of the sources; 36x for the Table 3 values).
func (g GainSources) OverallEE() float64 {
	return g.Scaling * g.SWMaturity * g.Fog * g.Margins
}

// Validate rejects non-positive factors.
func (g GainSources) Validate() error {
	if g.Scaling <= 0 || g.SWMaturity <= 0 || g.Fog <= 0 || g.Margins <= 0 {
		return fmt.Errorf("tco: non-positive gain source in %+v", g)
	}
	return nil
}

// DataCenter parameterizes one deployment for TCO estimation. Costs
// are in USD; the model follows the standard CapEx (servers, facility)
// plus OpEx (energy, maintenance) decomposition over the lifetime.
type DataCenter struct {
	Name                 string
	Servers              int
	ServerCostUSD        float64 // acquisition cost per server
	InfraCostPerServer   float64 // facility/network/rack amortized per server
	ServerAvgPowerW      float64 // average draw per server
	PUE                  float64 // power usage effectiveness (cooling overhead)
	EnergyPriceUSDPerKWh float64
	MaintPerServerYear   float64
	LifetimeYears        float64
}

// DefaultCloudDC returns a conventional cloud deployment sized so that
// energy is a realistic ~13-14% of TCO — the share at which the
// paper's 36x EE gain translates into its published 1.15x TCO gain.
func DefaultCloudDC() DataCenter {
	return DataCenter{
		Name:                 "cloud-dc",
		Servers:              1000,
		ServerCostUSD:        2600,
		InfraCostPerServer:   1000,
		ServerAvgPowerW:      130,
		PUE:                  1.5,
		EnergyPriceUSDPerKWh: 0.10,
		MaintPerServerYear:   180,
		LifetimeYears:        4,
	}
}

// DefaultEdgeDC returns a micro-server Edge deployment: cheaper
// ARM-based nodes without dedicated cooling (PUE near 1), but pricier
// retail energy.
func DefaultEdgeDC() DataCenter {
	return DataCenter{
		Name:                 "edge-dc",
		Servers:              200,
		ServerCostUSD:        900,
		InfraCostPerServer:   250,
		ServerAvgPowerW:      45,
		PUE:                  1.1,
		EnergyPriceUSDPerKWh: 0.16,
		MaintPerServerYear:   90,
		LifetimeYears:        4,
	}
}

// Validate rejects non-physical configurations.
func (d DataCenter) Validate() error {
	if d.Servers <= 0 {
		return errors.New("tco: need at least one server")
	}
	if d.ServerCostUSD < 0 || d.InfraCostPerServer < 0 || d.MaintPerServerYear < 0 {
		return errors.New("tco: negative cost")
	}
	if d.ServerAvgPowerW <= 0 || d.PUE < 1 || d.EnergyPriceUSDPerKWh <= 0 || d.LifetimeYears <= 0 {
		return errors.New("tco: non-physical power/energy parameters")
	}
	return nil
}

// CapExUSD returns acquisition plus infrastructure cost.
func (d DataCenter) CapExUSD() float64 {
	return float64(d.Servers) * (d.ServerCostUSD + d.InfraCostPerServer)
}

// EnergyUSD returns the lifetime energy cost including PUE overhead.
func (d DataCenter) EnergyUSD() float64 {
	kWh := float64(d.Servers) * d.ServerAvgPowerW / 1000 * d.PUE * 24 * 365 * d.LifetimeYears
	return kWh * d.EnergyPriceUSDPerKWh
}

// MaintenanceUSD returns the lifetime maintenance cost.
func (d DataCenter) MaintenanceUSD() float64 {
	return float64(d.Servers) * d.MaintPerServerYear * d.LifetimeYears
}

// TCOUSD returns the total cost of ownership over the lifetime.
func (d DataCenter) TCOUSD() float64 {
	return d.CapExUSD() + d.EnergyUSD() + d.MaintenanceUSD()
}

// EnergyShare returns the energy fraction of TCO.
func (d DataCenter) EnergyShare() float64 {
	return d.EnergyUSD() / d.TCOUSD()
}

// ApplyEnergyEfficiency returns the deployment with the same delivered
// work at eeFactor-times better energy efficiency (per-server power
// divided by the factor).
func (d DataCenter) ApplyEnergyEfficiency(eeFactor float64) (DataCenter, error) {
	if eeFactor <= 0 {
		return DataCenter{}, errors.New("tco: energy-efficiency factor must be positive")
	}
	d.ServerAvgPowerW /= eeFactor
	d.Name = d.Name + fmt.Sprintf("+ee%.3gx", eeFactor)
	return d, nil
}

// ApplyYieldDiscount models the paper's "lower chip cost due to higher
// yield": parts that binning would have discarded become sellable
// under per-part margins, lowering acquisition cost.
func (d DataCenter) ApplyYieldDiscount(discountFrac float64) (DataCenter, error) {
	if discountFrac < 0 || discountFrac >= 1 {
		return DataCenter{}, errors.New("tco: discount must be in [0,1)")
	}
	d.ServerCostUSD *= 1 - discountFrac
	return d, nil
}

// Improvement returns base TCO divided by improved TCO (>1 is better).
func Improvement(base, improved DataCenter) float64 {
	return base.TCOUSD() / improved.TCOUSD()
}

// Table3Projection reproduces the paper's Table 3 bottom line: the
// overall EE gain and the TCO improvement from energy efficiency
// alone, for the given deployment.
type Table3Projection struct {
	Gains          GainSources
	OverallEE      float64
	TCOBaseUSD     float64
	TCOWithEEUSD   float64
	TCOImprovement float64
}

// ProjectTable3 computes the projection for a deployment.
func ProjectTable3(base DataCenter, gains GainSources) (Table3Projection, error) {
	if err := base.Validate(); err != nil {
		return Table3Projection{}, err
	}
	if err := gains.Validate(); err != nil {
		return Table3Projection{}, err
	}
	improved, err := base.ApplyEnergyEfficiency(gains.OverallEE())
	if err != nil {
		return Table3Projection{}, err
	}
	return Table3Projection{
		Gains:          gains,
		OverallEE:      gains.OverallEE(),
		TCOBaseUSD:     base.TCOUSD(),
		TCOWithEEUSD:   improved.TCOUSD(),
		TCOImprovement: Improvement(base, improved),
	}, nil
}

// String renders the projection as a Table 3-style row.
func (p Table3Projection) String() string {
	return fmt.Sprintf(
		"EE sources: scaling %.2fx x sw %.2fx x fog %.2fx x margins %.2fx = %.1fx overall; TCO %.3fx",
		p.Gains.Scaling, p.Gains.SWMaturity, p.Gains.Fog, p.Gains.Margins,
		p.OverallEE, p.TCOImprovement)
}
