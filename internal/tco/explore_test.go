package tco

import (
	"strings"
	"testing"
)

func TestSweepMarginsMonotone(t *testing.T) {
	fixed := Table3Gains()
	points, err := SweepMargins(DefaultCloudDC(), fixed, []float64{1, 1.5, 2, 3, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].TCOImprovement < points[i-1].TCOImprovement {
			t.Fatal("TCO not monotone in margins gain")
		}
		if points[i].OverallEE <= points[i-1].OverallEE {
			t.Fatal("EE not monotone in margins gain")
		}
	}
	// margins=1 means no UniServer contribution: still > 1x TCO from
	// the other sources, but strictly less than the Table 3 point.
	if points[0].TCOImprovement >= points[3].TCOImprovement {
		t.Fatal("margins contribution invisible in sweep")
	}
}

func TestSweepMarginsDiminishingReturns(t *testing.T) {
	points, err := SweepMargins(DefaultCloudDC(), Table3Gains(), []float64{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Energy share bounds the achievable TCO: increments must shrink.
	d1 := points[1].TCOImprovement - points[0].TCOImprovement
	d3 := points[4].TCOImprovement - points[3].TCOImprovement
	if d3 >= d1 {
		t.Fatalf("no diminishing returns: first step %v, last step %v", d1, d3)
	}
}

func TestSweepMarginsValidation(t *testing.T) {
	if _, err := SweepMargins(DefaultCloudDC(), Table3Gains(), nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := SweepMargins(DefaultCloudDC(), Table3Gains(), []float64{0}); err == nil {
		t.Fatal("zero margins gain accepted")
	}
	bad := DefaultCloudDC()
	bad.Servers = 0
	if _, err := SweepMargins(bad, Table3Gains(), []float64{1}); err == nil {
		t.Fatal("invalid deployment accepted")
	}
}

func TestCompareDeployments(t *testing.T) {
	ps, err := CompareDeployments(Table3Gains(), DefaultCloudDC(), DefaultEdgeDC())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("projections = %d", len(ps))
	}
	// The edge deployment's higher energy share makes EE worth more.
	if ps[1].TCOImprovement <= ps[0].TCOImprovement {
		t.Fatalf("edge TCO improvement (%v) should exceed cloud (%v)",
			ps[1].TCOImprovement, ps[0].TCOImprovement)
	}
	if _, err := CompareDeployments(Table3Gains()); err == nil {
		t.Fatal("empty deployment list accepted")
	}
}

func TestRenderSweep(t *testing.T) {
	points, err := SweepMargins(DefaultCloudDC(), Table3Gains(), []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	s := RenderSweep(points)
	if !strings.Contains(s, "margins gain") || len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Fatalf("rendering:\n%s", s)
	}
}
