package tco

import (
	"errors"
	"fmt"
	"strings"
)

// SweepPoint is one design-space sample: a margins-gain hypothesis and
// the TCO it buys.
type SweepPoint struct {
	MarginsGain    float64
	OverallEE      float64
	TCOImprovement float64
}

// SweepMargins explores the design space along the margins axis (the
// knob UniServer actually contributes), holding the other Table 3
// sources fixed: how much TCO improvement does each increment of
// guardband recovery buy for this deployment? This is the "end-to-end
// estimation of the TCO and data-center design exploration" tool of
// Section 6.D.
func SweepMargins(base DataCenter, fixed GainSources, marginGains []float64) ([]SweepPoint, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if len(marginGains) == 0 {
		return nil, errors.New("tco: empty margins sweep")
	}
	out := make([]SweepPoint, 0, len(marginGains))
	for _, mg := range marginGains {
		g := fixed
		g.Margins = mg
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("tco: margins gain %v: %w", mg, err)
		}
		p, err := ProjectTable3(base, g)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			MarginsGain:    mg,
			OverallEE:      p.OverallEE,
			TCOImprovement: p.TCOImprovement,
		})
	}
	return out, nil
}

// CompareDeployments evaluates the same gain hypothesis across
// deployments (cloud versus edge), returning one projection per
// deployment in input order.
func CompareDeployments(gains GainSources, dcs ...DataCenter) ([]Table3Projection, error) {
	if len(dcs) == 0 {
		return nil, errors.New("tco: no deployments to compare")
	}
	out := make([]Table3Projection, 0, len(dcs))
	for _, dc := range dcs {
		p, err := ProjectTable3(dc, gains)
		if err != nil {
			return nil, fmt.Errorf("tco: deployment %q: %w", dc.Name, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderSweep renders a margins sweep as a text table.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %10s  %8s\n", "margins gain", "overall EE", "TCO")
	for _, p := range points {
		fmt.Fprintf(&b, "%11.2fx  %9.1fx  %7.3fx\n", p.MarginsGain, p.OverallEE, p.TCOImprovement)
	}
	return b.String()
}
