// Package uniserver is a from-scratch Go reproduction of the UniServer
// ecosystem described in "An Energy-Efficient and Error-Resilient
// Server Ecosystem Exceeding Conservative Scaling Limits" (Tovletoglou
// et al., Horizon 2020 grant 688540): per-component Extended Operating
// Point discovery, HealthLog/StressLog/Predictor monitoring daemons,
// an error-resilient hypervisor with criticality-driven selective
// protection, a reliability-aware cloud resource manager, a
// deterministic concurrent fleet runtime that characterizes and steps
// many nodes in parallel (internal/fleet), and the supporting
// silicon-variation, cache-ECC and DRAM-retention simulators.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and bench_test.go for the harness that
// regenerates every table and figure of the paper's evaluation.
package uniserver
